package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCoverage(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i * 3
	}
	var calls atomic.Int64
	out := Map(8, cells, func(i, c int) int {
		calls.Add(1)
		return c + i
	})
	if calls.Load() != 100 {
		t.Fatalf("fn called %d times, want 100", calls.Load())
	}
	for i, v := range out {
		if v != i*4 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*4)
		}
	}
}

func TestMapEmptyAndSerial(t *testing.T) {
	if got := Map(4, nil, func(i, c int) int { return c }); len(got) != 0 {
		t.Fatalf("empty cells gave %v", got)
	}
	out := Map(1, []int{5, 6}, func(i, c int) int { return c * c })
	if out[0] != 25 || out[1] != 36 {
		t.Fatalf("serial map wrong: %v", out)
	}
}

func TestGridExpansion(t *testing.T) {
	g := Grid{
		Algos:     []string{"memory", "fast"},
		Models:    []string{"er", "regular"},
		Sizes:     []int{512, 1024},
		Densities: []float64{0.5, 2},
		Failures:  []FailureSpec{{Count: 0}, {Frac: 0.01}},
		Reps:      3,
	}
	cells := g.Scenarios()
	// memory gets the full failures axis; fast (no crash model) collapses
	// to one zero-failure cell per combination.
	want := 2*2*2*2 + 2*2*2
	if len(cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(cells), want)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		if c.Reps != 3 {
			t.Fatalf("cell %d has reps %d", i, c.Reps)
		}
		if c.Algo != "memory" && c.Failures != 0 {
			t.Fatalf("failure cell leaked to %s: %+v", c.Algo, c)
		}
	}
	// Failures innermost: memory cells alternate 0, n/100.
	if cells[0].Failures != 0 || cells[1].Failures != 5 {
		t.Fatalf("failure resolution wrong: %d, %d", cells[0].Failures, cells[1].Failures)
	}
	// Algo outermost.
	if cells[0].Algo != "memory" || cells[16].Algo != "fast" {
		t.Fatalf("algo nesting wrong: %s, %s", cells[0].Algo, cells[16].Algo)
	}
}

func TestGridDefaults(t *testing.T) {
	cells := Grid{Sizes: []int{256}}.Scenarios()
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Algo != "pushpull" || c.Model != "er" || c.Failures != 0 || c.Reps != 1 {
		t.Fatalf("bad defaults: %+v", c)
	}
}

func TestParseFailureSpec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		n    int
		want int
	}{
		{"0", 1000, 0},
		{"250", 1000, 250},
		{"1%", 1000, 10},
		{"2.5%", 10000, 250},
	} {
		f, err := ParseFailureSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseFailureSpec(%q): %v", tc.in, err)
		}
		if got := f.Resolve(tc.n); got != tc.want {
			t.Errorf("ParseFailureSpec(%q).Resolve(%d) = %d, want %d", tc.in, tc.n, got, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "-3", "101%", "12%%"} {
		if _, err := ParseFailureSpec(bad); err == nil {
			t.Errorf("ParseFailureSpec(%q) accepted", bad)
		}
	}
}

func TestGridValidate(t *testing.T) {
	if err := (Grid{Algos: []string{"pushpull"}, Models: []string{"er"}, Sizes: []int{64}}).Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	for _, bad := range []Grid{
		{Algos: []string{"nope"}},
		{Models: []string{"nope"}},
		{Sizes: []int{1}},
		{Densities: []float64{0}},
		// Failure counts that would crash every node (the robustness
		// simulator needs a surviving leader), absolute and relative —
		// including against the defaulted size axis.
		{Sizes: []int{128}, Failures: []FailureSpec{{Count: 128}}},
		{Sizes: []int{128, 4096}, Failures: []FailureSpec{{Frac: 1}}},
		{Failures: []FailureSpec{{Count: 1 << 20}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid grid %+v accepted", bad)
		}
	}
	// A count valid for the larger size but not the smaller is rejected.
	if err := (Grid{Sizes: []int{128, 4096}, Failures: []FailureSpec{{Count: 200}}}).Validate(); err == nil {
		t.Error("failure count exceeding the smallest size accepted")
	}
}

// sweepJSONL runs a small real grid at the given worker count and returns
// the rendered JSONL stream.
func sweepJSONL(t *testing.T, workers int) string {
	t.Helper()
	g := Grid{
		Algos:    []string{"pushpull", "memory"},
		Models:   []string{"er", "complete"},
		Sizes:    []int{128, 256},
		Failures: []FailureSpec{{Count: 0}, {Frac: 0.05}},
		Reps:     2,
		Seed:     42,
	}
	// pushpull collapses the failures axis (4 cells); memory keeps it (8).
	r := &Runner{Workers: workers}
	results := r.RunGrid(g)
	if len(results) != 12 {
		t.Fatalf("got %d results, want 12", len(results))
	}
	var b strings.Builder
	if err := WriteJSONL(&b, results); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := sweepJSONL(t, 1)
	parallel := sweepJSONL(t, 8)
	if serial != parallel {
		t.Fatalf("results depend on worker count:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", serial, parallel)
	}
	if n := strings.Count(serial, "\n"); n != 12 {
		t.Fatalf("JSONL has %d lines, want 12", n)
	}
	for _, want := range []string{`"algo":"pushpull"`, `"metrics"`, `"msgs_per_node"`, `"ratio"`} {
		if !strings.Contains(serial, want) {
			t.Errorf("JSONL missing %s", want)
		}
	}
}

func TestExecuteAlgosAndModels(t *testing.T) {
	for _, algo := range Algos() {
		for _, model := range Models() {
			s := Scenario{Algo: algo, Model: model, N: 128, Reps: 1}
			m := Execute(s, 0, CellSeed(1, 0, 0))
			if len(m) == 0 {
				t.Fatalf("%s/%s: empty metrics", algo, model)
			}
			if _, ok := m["msgs_per_node"]; !ok {
				t.Errorf("%s/%s: missing msgs_per_node", algo, model)
			}
		}
	}
	// memory + failures switches to the robustness metrics.
	m := Execute(Scenario{Algo: "memory", Model: "er", N: 256, Failures: 10}, 0, CellSeed(1, 0, 0))
	if _, ok := m["ratio"]; !ok {
		t.Errorf("robustness run missing ratio: %v", m)
	}
}

func TestTableRender(t *testing.T) {
	g := Grid{Algos: []string{"pushpull"}, Sizes: []int{128}, Reps: 2, Seed: 1}
	results := (&Runner{}).RunGrid(g)
	tab := Table("sweep", results)
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	for _, want := range []string{"algo", "msgs_per_node", "pushpull", "128"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q in:\n%s", want, out)
		}
	}
}

func TestRunStampsIndexAndSeedsByPosition(t *testing.T) {
	// Hand-built scenario lists (zero Index) must still get one distinct
	// seed stream per cell: Run seeds by slice position and stamps it.
	scenarios := []Scenario{
		{Algo: "pushpull", Model: "er", N: 128, Reps: 2},
		{Algo: "pushpull", Model: "er", N: 128, Reps: 2},
	}
	var seeds []uint64
	r := &Runner{Seed: 3, Exec: func(s Scenario, rep int, seed uint64) Metrics {
		seeds = append(seeds, seed)
		return Metrics{"x": float64(s.Index)}
	}, Workers: 1}
	results := r.Run(scenarios)
	if results[0].Scenario.Index != 0 || results[1].Scenario.Index != 1 {
		t.Fatalf("indices not stamped: %d, %d", results[0].Scenario.Index, results[1].Scenario.Index)
	}
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("identical cells received identical seeds")
		}
		seen[s] = true
	}
}

func TestCellSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for cell := 0; cell < 50; cell++ {
		for rep := 0; rep < 10; rep++ {
			s := CellSeed(7, cell, rep)
			if seen[s] {
				t.Fatalf("seed collision at cell=%d rep=%d", cell, rep)
			}
			seen[s] = true
		}
	}
}
