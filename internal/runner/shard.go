package runner

import (
	"fmt"
	"strconv"
	"strings"
)

// CellRange selects a subset of a grid's cell indices — the unit of
// cross-process sharding. Because per-cell seeds derive from the master
// seed and the grid cell index, any subset of cells computed anywhere
// yields records bit-identical to the same cells of a single-process
// sweep; a CellRange just names which subset a process owns.
//
// The zero value selects every cell. A modular shard (Shard/Of) deals
// cells round-robin — shard s of m owns cells i with i mod m == s — so
// m equally loaded processes cover a grid without coordinating. An
// index range ([Lo, Hi)) carves out an explicit contiguous slice. When
// both are set the selection is their intersection.
type CellRange struct {
	// Shard and Of select cells i with i mod Of == Shard, when Of > 1
	// (0 <= Shard < Of). Of <= 1 disables the modular filter.
	Shard int `json:"shard,omitempty"`
	Of    int `json:"of,omitempty"`
	// Lo and Hi select the half-open index range [Lo, Hi), when Hi > 0.
	// Hi == 0 disables the range filter.
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
}

// ShardOf returns the modular selector "s/m" — the per-shard range a
// dispatcher deals its subprocesses. m == 1 selects every cell (the
// degenerate single-shard dispatch).
func ShardOf(s, m int) CellRange { return CellRange{Shard: s, Of: m} }

// ParseCellRange parses a shard selector: "s/m" (modular shard s of m)
// or "lo..hi" (the half-open cell index range [lo, hi)). An empty
// string selects every cell.
func ParseCellRange(s string) (CellRange, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return CellRange{}, nil
	}
	if shard, of, ok := strings.Cut(s, "/"); ok {
		a, err1 := strconv.Atoi(shard)
		b, err2 := strconv.Atoi(of)
		// m < 1 would be the "filter disabled" sentinel, which typed
		// input must never reach: "0/0" silently meaning "every cell"
		// is how a whole grid runs on a machine meant to run a slice.
		if err1 != nil || err2 != nil || b < 1 {
			return CellRange{}, fmt.Errorf("runner: bad shard %q (want s/m with m >= 1, or lo..hi)", s)
		}
		cr := CellRange{Shard: a, Of: b}
		return cr, cr.Validate()
	}
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		// hi < 1 (e.g. "5..0") would likewise disable the filter.
		if err1 != nil || err2 != nil || b < 1 {
			return CellRange{}, fmt.Errorf("runner: bad cell range %q (want lo..hi with 0 <= lo < hi)", s)
		}
		cr := CellRange{Lo: a, Hi: b}
		return cr, cr.Validate()
	}
	return CellRange{}, fmt.Errorf("runner: bad shard %q (want s/m or lo..hi)", s)
}

// Validate rejects selections that can never match a cell, and the
// ambiguous Lo-without-Hi form (Hi == 0 disables the range filter, so
// a stray Lo would be silently ignored).
func (c CellRange) Validate() error {
	if c.Of < 0 || (c.Of > 0 && (c.Shard < 0 || c.Shard >= c.Of)) {
		return fmt.Errorf("runner: shard %d/%d out of range (need 0 <= s < m)", c.Shard, c.Of)
	}
	if c.Lo < 0 || c.Hi < 0 || (c.Hi > 0 && c.Lo >= c.Hi) {
		return fmt.Errorf("runner: cell range %d..%d empty (need 0 <= lo < hi)", c.Lo, c.Hi)
	}
	if c.Hi == 0 && c.Lo > 0 {
		return fmt.Errorf("runner: cell range lower bound %d without an upper bound", c.Lo)
	}
	return nil
}

// IsAll reports whether the range selects every cell.
func (c CellRange) IsAll() bool { return c.Of <= 1 && c.Hi == 0 }

// Contains reports whether cell index i is selected.
func (c CellRange) Contains(i int) bool {
	if c.Of > 1 && i%c.Of != c.Shard {
		return false
	}
	if c.Hi > 0 && (i < c.Lo || i >= c.Hi) {
		return false
	}
	return true
}

// Indices returns the selected cell indices of an n-cell grid, in
// ascending order.
func (c CellRange) Indices(n int) []int {
	if c.IsAll() {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	for i := 0; i < n; i++ {
		if c.Contains(i) {
			out = append(out, i)
		}
	}
	return out
}

// Filter returns the scenarios whose stamped Index the range selects,
// preserving both order and indices.
func (c CellRange) Filter(scenarios []Scenario) []Scenario {
	if c.IsAll() {
		return scenarios
	}
	var out []Scenario
	for _, s := range scenarios {
		if c.Contains(s.Index) {
			out = append(out, s)
		}
	}
	return out
}

// String renders the selector for display: "s/m" or "lo..hi" round-
// trip through ParseCellRange; a conjunction (both filters set, only
// constructible through the API) renders as both parts joined by "&",
// and the zero value as "all" — neither is a parseable input.
func (c CellRange) String() string {
	var parts []string
	if c.Of > 1 {
		parts = append(parts, fmt.Sprintf("%d/%d", c.Shard, c.Of))
	}
	if c.Hi > 0 {
		parts = append(parts, fmt.Sprintf("%d..%d", c.Lo, c.Hi))
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, "&")
}
