package runner

import (
	"strings"
	"testing"
)

func TestParseCellRange(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CellRange
	}{
		{"", CellRange{}},
		{"0/3", CellRange{Shard: 0, Of: 3}},
		{"2/3", CellRange{Shard: 2, Of: 3}},
		{" 1/2 ", CellRange{Shard: 1, Of: 2}},
		{"0/1", CellRange{Shard: 0, Of: 1}},
		{"4..9", CellRange{Lo: 4, Hi: 9}},
		{"0..1", CellRange{Lo: 0, Hi: 1}},
	} {
		got, err := ParseCellRange(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCellRange(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
	}
	// "Filter disabled" sentinels (m or hi < 1) must never come out of
	// typed input: "0/0" silently meaning "all cells" would run a whole
	// grid on a machine meant to run a slice.
	for _, bad := range []string{"x", "1", "3/3", "-1/3", "1/x", "x/2", "0/0", "1/0", "0/-2",
		"5..5", "9..4", "-2..4", "a..b", "0..0", "5..0"} {
		if _, err := ParseCellRange(bad); err == nil {
			t.Errorf("ParseCellRange(%q) accepted", bad)
		}
	}
	// The API-level equivalent: a lower bound without an upper bound
	// would be silently ignored by Contains.
	if err := (CellRange{Lo: 5}).Validate(); err == nil {
		t.Error("Validate accepted Lo without Hi")
	}
}

func TestCellRangeSelection(t *testing.T) {
	if !(CellRange{}).IsAll() || (CellRange{Of: 2}).IsAll() || (CellRange{Hi: 3}).IsAll() {
		t.Fatal("IsAll wrong")
	}
	// Modular shards of any m partition the index space.
	n := 17
	seen := make([]int, n)
	for s := 0; s < 3; s++ {
		for _, i := range (CellRange{Shard: s, Of: 3}).Indices(n) {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("cell %d covered %d times by shards of 3", i, c)
		}
	}
	// Ranges select half-open slices; a conjunction intersects.
	r := CellRange{Lo: 4, Hi: 9}
	if got := r.Indices(n); len(got) != 5 || got[0] != 4 || got[4] != 8 {
		t.Fatalf("range indices = %v", got)
	}
	both := CellRange{Shard: 0, Of: 2, Lo: 4, Hi: 9}
	if got := both.Indices(n); len(got) != 3 || got[0] != 4 || got[2] != 8 {
		t.Fatalf("conjunction indices = %v", got)
	}
	if s := both.String(); !strings.Contains(s, "0/2") || !strings.Contains(s, "4..9") {
		t.Errorf("conjunction String() = %q", s)
	}
	if (CellRange{}).String() != "all" {
		t.Errorf("all String() = %q", CellRange{}.String())
	}
}

// TestRunGridShardMatchesFullRun is the sharding core property: every
// shard's cells serialize bit-identically to the same cells of the
// unsharded run, at any worker count, for modular and range shards.
func TestRunGridShardMatchesFullRun(t *testing.T) {
	g := Grid{
		Algos:     []string{"pushpull", "memory"},
		Sizes:     []int{64, 128},
		Densities: []float64{1, 2},
		Failures:  []FailureSpec{{}, {Count: 5}},
		Reps:      2,
		Seed:      13,
	}
	full := (&Runner{Workers: 4}).RunGrid(g)
	byIndex := map[int]string{}
	for _, c := range full {
		var b strings.Builder
		if err := WriteJSONL(&b, []CellResult{c}); err != nil {
			t.Fatal(err)
		}
		byIndex[c.Scenario.Index] = b.String()
	}

	ranges := []CellRange{
		{Shard: 0, Of: 3}, {Shard: 1, Of: 3}, {Shard: 2, Of: 3},
		{Lo: 0, Hi: 2}, {Lo: 2, Hi: len(full)},
	}
	for _, cr := range ranges {
		for _, workers := range []int{1, 3} {
			got := (&Runner{Workers: workers}).RunGridShard(g, cr)
			want := cr.Indices(len(full))
			if len(got) != len(want) {
				t.Fatalf("shard %s: %d cells, want %d", cr, len(got), len(want))
			}
			for p, c := range got {
				if c.Scenario.Index != want[p] {
					t.Fatalf("shard %s position %d holds cell %d, want %d", cr, p, c.Scenario.Index, want[p])
				}
				var b strings.Builder
				if err := WriteJSONL(&b, []CellResult{c}); err != nil {
					t.Fatal(err)
				}
				if b.String() != byIndex[c.Scenario.Index] {
					t.Errorf("shard %s (workers %d) cell %d differs from full run", cr, workers, c.Scenario.Index)
				}
			}
		}
	}
}

// TestOrderedCellsSeq: a sequence-following stream emits the shard's
// owned cells in order, buffers gaps, ignores unowned cells and an
// already-done prefix.
func TestOrderedCellsSeq(t *testing.T) {
	var got []int
	o := NewOrderedCellsSeq([]int{1, 4, 7, 10}, 0, func(r CellRecord) error {
		got = append(got, r.Index)
		return nil
	})
	o.Add(fakeResult(7, 7)) // buffers: 1 and 4 outstanding
	o.Add(fakeResult(2, 2)) // not owned: ignored
	o.Add(fakeResult(1, 1)) // emits 1
	if len(got) != 1 || got[0] != 1 || o.Pending() != 1 {
		t.Fatalf("after {7,2,1}: got %v pending %d", got, o.Pending())
	}
	o.Add(fakeResult(4, 4)) // emits 4, then the buffered 7
	o.Add(fakeResult(10, 10))
	if len(got) != 4 || got[3] != 10 || o.Pending() != 0 || o.Err() != nil {
		t.Fatalf("final: got %v pending %d err %v", got, o.Pending(), o.Err())
	}

	// A resumed shard: the first done cells are already on disk.
	got = nil
	o = NewOrderedCellsSeq([]int{1, 4, 7}, 2, func(r CellRecord) error {
		got = append(got, r.Index)
		return nil
	})
	o.Add(fakeResult(1, 1)) // done prefix: ignored
	o.Add(fakeResult(4, 4)) // done prefix: ignored
	o.Add(fakeResult(7, 7))
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("resumed shard stream got %v, want [7]", got)
	}
}

// TestScenariosPreallocation: the capacity hint accounts for every
// axis (trees/memslots/walkprob included) and their per-algorithm
// collapse, so knob-heavy grids expand without reallocating.
func TestScenariosPreallocation(t *testing.T) {
	for _, g := range []Grid{
		{Sizes: []int{64}},
		{
			Algos:     []string{"memory", "fast", "pushpull"},
			Models:    []string{"er", "regular"},
			Sizes:     []int{64, 128},
			Densities: []float64{1, 2},
			Failures:  []FailureSpec{{}, {Count: 3}},
			Trees:     []int{1, 3},
			MemSlots:  []int{2, 4},
			WalkProbs: []float64{0.25, 0.5},
		},
		{Algos: []string{"memory"}, Sizes: []int{64}, Trees: []int{1, 2, 3}},
		{Algos: []string{"fast"}, Sizes: []int{64}, WalkProbs: []float64{0.1, 0.9}},
	} {
		s := g.Scenarios()
		if len(s) != cap(s) {
			t.Errorf("grid %+v: len %d != cap %d", g, len(s), cap(s))
		}
	}
}

// TestFailureSpecResolveRounding: Frac·n rounds to nearest — awkward
// fractions whose float product lands an ulp below the true value must
// not lose a node to truncation.
func TestFailureSpecResolveRounding(t *testing.T) {
	for _, tc := range []struct {
		frac float64
		n    int
		want int
	}{
		{0.29, 100, 29}, // 0.29*100 = 28.999999999999996 — truncation loses a node
		{0.1, 55, 6},    // 5.5 rounds up; truncation gives 5
		{0.07, 300, 21}, // 0.07*300 = 21.000000000000004 — stays 21 either way
		{0.001, 1000, 1},
		{0.025, 10000, 250},
		{0.015, 1000, 15},
	} {
		f := FailureSpec{Frac: tc.frac}
		if got := f.Resolve(tc.n); got != tc.want {
			t.Errorf("FailureSpec{Frac: %v}.Resolve(%d) = %d, want %d", tc.frac, tc.n, got, tc.want)
		}
	}
	// Absolute counts are untouched.
	if got := (FailureSpec{Count: 17}).Resolve(1000); got != 17 {
		t.Errorf("Count resolve = %d", got)
	}
}

// TestShardOf: the constructor matches the parsed form of "s/m".
func TestShardOf(t *testing.T) {
	got := ShardOf(1, 3)
	want, err := ParseCellRange("1/3")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ShardOf(1, 3) = %+v, want %+v", got, want)
	}
	if !ShardOf(0, 1).IsAll() {
		t.Error("ShardOf(0, 1) does not select every cell")
	}
	if err := ShardOf(3, 3).Validate(); err == nil {
		t.Error("ShardOf(3, 3) validated")
	}
}
