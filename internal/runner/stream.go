package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// OrderedCells re-establishes cell-index order over a parallel run's
// completion order: completed cells arrive in any order and buffer
// until all their predecessors have been emitted, so emit sees a strict
// in-order sequence — at every instant a prefix of the full sweep. That
// prefix property is what makes ordered streams both consumable
// line-by-line and usable as checkpoints: a killed run's output is a
// valid prefix, and a resumed run appends exactly the missing suffix.
//
// Add is safe for concurrent use; it is the natural Runner.OnCell.
type OrderedCells struct {
	mu      sync.Mutex
	emit    func(CellRecord) error
	next    int
	pending map[int]CellRecord
	err     error
}

// NewOrderedCells returns a reorderer expecting cell index next first —
// 0 for a fresh sweep, the completed-cell count for a resumed one —
// and invoking emit once per cell, in index order.
func NewOrderedCells(next int, emit func(CellRecord) error) *OrderedCells {
	return &OrderedCells{
		emit:    emit,
		next:    next,
		pending: make(map[int]CellRecord),
	}
}

// Add accepts one completed cell. Cells at or past the expected index
// buffer until contiguous; cells before it (a resumed run's skipped
// prefix) are ignored. After an emit error the stream goes quiet and
// holds the error for Err — the sweep's computation is still valid,
// only its streaming failed.
func (o *OrderedCells) Add(c CellResult) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err != nil || c.Scenario.Index < o.next {
		return
	}
	o.pending[c.Scenario.Index] = c.Record()
	for {
		rec, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		if err := o.emit(rec); err != nil {
			o.err = fmt.Errorf("runner: stream cell %d: %w", o.next, err)
			o.pending = nil
			return
		}
		o.next++
	}
}

// Next returns the lowest cell index not yet emitted.
func (o *OrderedCells) Next() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.next
}

// Pending returns how many completed cells are buffered waiting for a
// predecessor.
func (o *OrderedCells) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending)
}

// Err returns the first emit error, if any.
func (o *OrderedCells) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// OrderedJSONL is an OrderedCells emitting JSON lines — the sweep
// stream and corpus cells.jsonl writer.
type OrderedJSONL struct {
	*OrderedCells
}

// NewOrderedJSONL returns a writer expecting cell index next first.
func NewOrderedJSONL(w io.Writer, next int) *OrderedJSONL {
	enc := json.NewEncoder(w)
	return &OrderedJSONL{NewOrderedCells(next, func(r CellRecord) error {
		return enc.Encode(r)
	})}
}
