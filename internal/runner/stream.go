package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// OrderedCells re-establishes cell-index order over a parallel run's
// completion order: completed cells arrive in any order and buffer
// until all their predecessors have been emitted, so emit sees a strict
// in-order sequence — at every instant a prefix of the full sweep. That
// prefix property is what makes ordered streams both consumable
// line-by-line and usable as checkpoints: a killed run's output is a
// valid prefix, and a resumed run appends exactly the missing suffix.
//
// A stream follows either the identity order (cell indices 0, 1, 2, …
// — a full sweep) or an explicit ascending index sequence (a shard's
// owned cells — see CellRange); the prefix property holds in both.
//
// Add is safe for concurrent use; it is the natural Runner.OnCell.
type OrderedCells struct {
	mu      sync.Mutex
	emit    func(CellRecord) error
	seq     []int              // expected cell indices in emit order; nil = identity
	posOf   map[int]int        // cell index → emit position; nil when seq is
	pos     int                // next emit position
	pending map[int]CellRecord // completed cells keyed by emit position
	err     error
}

// NewOrderedCells returns a reorderer over the identity order expecting
// cell index next first — 0 for a fresh sweep, the completed-cell count
// for a resumed one — and invoking emit once per cell, in index order.
func NewOrderedCells(next int, emit func(CellRecord) error) *OrderedCells {
	return &OrderedCells{
		emit:    emit,
		pos:     next,
		pending: make(map[int]CellRecord),
	}
}

// NewOrderedCellsSeq returns a reorderer expecting exactly the cell
// indices in seq, in that order, with the first done of them already
// emitted (a resumed shard's completed prefix). Cells outside seq are
// ignored.
func NewOrderedCellsSeq(seq []int, done int, emit func(CellRecord) error) *OrderedCells {
	posOf := make(map[int]int, len(seq))
	for p, i := range seq {
		posOf[i] = p
	}
	return &OrderedCells{
		emit:    emit,
		seq:     seq,
		posOf:   posOf,
		pos:     done,
		pending: make(map[int]CellRecord),
	}
}

// position maps a cell index to its emit position; ok is false for
// cells the stream does not own.
func (o *OrderedCells) position(index int) (int, bool) {
	if o.posOf == nil {
		return index, true
	}
	p, ok := o.posOf[index]
	return p, ok
}

// Add accepts one completed cell. Cells at or past the expected
// position buffer until contiguous; cells before it (a resumed run's
// skipped prefix) and cells the stream does not own (another shard's)
// are ignored. After an emit error the stream goes quiet and holds the
// error for Err — the sweep's computation is still valid, only its
// streaming failed.
func (o *OrderedCells) Add(c CellResult) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err != nil {
		return
	}
	p, ok := o.position(c.Scenario.Index)
	if !ok || p < o.pos {
		return
	}
	o.pending[p] = c.Record()
	for {
		rec, ok := o.pending[o.pos]
		if !ok {
			return
		}
		delete(o.pending, o.pos)
		if err := o.emit(rec); err != nil {
			o.err = fmt.Errorf("runner: stream cell %d: %w", rec.Index, err)
			o.pending = nil
			return
		}
		o.pos++
	}
}

// Position returns the emit position of a cell index — its line
// number in the completed stream — and whether the stream owns it at
// all (an identity stream owns every index).
func (o *OrderedCells) Position(index int) (int, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.position(index)
}

// Next returns the emit position of the next cell the stream is
// waiting for — for an identity stream, the cell index itself.
func (o *OrderedCells) Next() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pos
}

// Pending returns how many completed cells are buffered waiting for a
// predecessor.
func (o *OrderedCells) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending)
}

// Err returns the first emit error, if any.
func (o *OrderedCells) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// OrderedJSONL is an OrderedCells emitting JSON lines — the sweep
// stream and corpus cells.jsonl writer.
type OrderedJSONL struct {
	*OrderedCells
}

// NewOrderedJSONL returns a writer over the identity order expecting
// cell index next first.
func NewOrderedJSONL(w io.Writer, next int) *OrderedJSONL {
	return &OrderedJSONL{NewOrderedCells(next, jsonlEmit(w))}
}

// NewOrderedJSONLSeq returns a writer expecting exactly the cell
// indices in seq, with the first done already on disk — the shard
// checkpoint writer.
func NewOrderedJSONLSeq(w io.Writer, seq []int, done int) *OrderedJSONL {
	return &OrderedJSONL{NewOrderedCellsSeq(seq, done, jsonlEmit(w))}
}

func jsonlEmit(w io.Writer) func(CellRecord) error {
	enc := json.NewEncoder(w)
	return func(r CellRecord) error {
		return enc.Encode(r)
	}
}
