package runner

import (
	"strings"
	"sync"
	"testing"

	"gossip/internal/stats"
)

// fakeResult builds a one-metric result for stream tests.
func fakeResult(index int, v float64) CellResult {
	var a stats.Acc
	a.Add(v)
	return CellResult{
		Scenario: Scenario{Index: index, Algo: "pushpull", Model: "er", N: 64, Reps: 1},
		Metrics:  map[string]*stats.Acc{"steps": &a},
	}
}

func TestOrderedJSONLReordersCompletionOrder(t *testing.T) {
	var b strings.Builder
	o := NewOrderedJSONL(&b, 0)
	// Completion order 2, 0, 3, 1: nothing may appear until its prefix
	// is contiguous.
	o.Add(fakeResult(2, 2))
	if b.Len() != 0 || o.Pending() != 1 {
		t.Fatalf("out-of-order cell written early: %q", b.String())
	}
	o.Add(fakeResult(0, 0))
	if got := strings.Count(b.String(), "\n"); got != 1 {
		t.Fatalf("after cells {2,0}: %d lines, want 1", got)
	}
	o.Add(fakeResult(3, 3))
	o.Add(fakeResult(1, 1))
	if got := strings.Count(b.String(), "\n"); got != 4 {
		t.Fatalf("after all cells: %d lines, want 4", got)
	}
	if o.Next() != 4 || o.Pending() != 0 || o.Err() != nil {
		t.Fatalf("final state: next=%d pending=%d err=%v", o.Next(), o.Pending(), o.Err())
	}
	// The stream equals the batch writer's output for the same cells.
	var want strings.Builder
	results := []CellResult{fakeResult(0, 0), fakeResult(1, 1), fakeResult(2, 2), fakeResult(3, 3)}
	if err := WriteJSONL(&want, results); err != nil {
		t.Fatal(err)
	}
	if b.String() != want.String() {
		t.Errorf("stream differs from batch:\n%s\nvs\n%s", b.String(), want.String())
	}
}

func TestOrderedJSONLIgnoresSkippedPrefix(t *testing.T) {
	var b strings.Builder
	o := NewOrderedJSONL(&b, 2)
	o.Add(fakeResult(0, 0)) // already on disk in a resumed run
	o.Add(fakeResult(2, 2))
	o.Add(fakeResult(3, 3))
	if got := strings.Count(b.String(), "\n"); got != 2 {
		t.Fatalf("resumed stream has %d lines, want 2", got)
	}
	if !strings.Contains(b.String(), `"index":2`) || strings.Contains(b.String(), `"index":0`) {
		t.Errorf("resumed stream wrong:\n%s", b.String())
	}
}

// failAfter errors every write past a byte budget.
type failAfter struct {
	left int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, &writeErr{}
	}
	f.left -= len(p)
	return len(p), nil
}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestOrderedJSONLHoldsWriteError(t *testing.T) {
	o := NewOrderedJSONL(&failAfter{left: 1}, 0)
	o.Add(fakeResult(0, 0))
	o.Add(fakeResult(1, 1))
	if o.Err() == nil {
		t.Fatal("write error lost")
	}
	// The stream stays quiet after the error instead of interleaving
	// later cells past a hole.
	if o.Pending() != 0 {
		t.Errorf("pending after error: %d", o.Pending())
	}
}

func TestRunnerOnCellStreamsEveryCell(t *testing.T) {
	g := Grid{Sizes: []int{64, 128}, Densities: []float64{1, 2}, Reps: 1, Seed: 5}
	var (
		mu   sync.Mutex
		seen []int
	)
	r := &Runner{
		Workers: 4,
		OnCell: func(c CellResult) {
			mu.Lock()
			defer mu.Unlock()
			if c.Metrics == nil {
				t.Error("OnCell got a skipped cell")
			}
			seen = append(seen, c.Scenario.Index)
		},
	}
	results := r.RunGrid(g)
	if len(seen) != len(results) {
		t.Fatalf("OnCell saw %d cells, want %d", len(seen), len(results))
	}
	got := map[int]bool{}
	for _, i := range seen {
		got[i] = true
	}
	for i := range results {
		if !got[i] {
			t.Errorf("cell %d never reported", i)
		}
	}
}

func TestRunnerSkipLeavesResultsIdentical(t *testing.T) {
	g := Grid{Sizes: []int{64, 128}, Densities: []float64{1, 2}, Reps: 2, Seed: 6}
	full := (&Runner{Workers: 2}).RunGrid(g)
	skipped := (&Runner{
		Workers: 2,
		Skip:    func(s Scenario) bool { return s.Index < 2 },
	}).RunGrid(g)
	if len(full) != len(skipped) {
		t.Fatal("length mismatch")
	}
	for i := range skipped {
		if i < 2 {
			if skipped[i].Metrics != nil {
				t.Errorf("skipped cell %d has metrics", i)
			}
			continue
		}
		var a, b strings.Builder
		if err := WriteJSONL(&a, full[i:i+1]); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSONL(&b, skipped[i:i+1]); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("cell %d differs after prefix skip:\n%s\nvs\n%s", i, a.String(), b.String())
		}
	}
}

func TestKnobAxesExpandAndCollapse(t *testing.T) {
	g := Grid{
		Algos:     []string{"memory", "fast", "pushpull"},
		Sizes:     []int{128},
		Trees:     []int{1, 3},
		MemSlots:  []int{2, 4},
		WalkProbs: []float64{0.25, 0.5},
	}
	cells := g.Scenarios()
	// memory: trees × memslots (walkprob collapses) = 4; fast:
	// walkprobs = 2; pushpull: everything collapses = 1.
	if want := 4 + 2 + 1; len(cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(cells), want)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		switch c.Algo {
		case "memory":
			if c.Trees == 0 || c.MemSlots == 0 || c.WalkProb != 0 {
				t.Errorf("memory cell knobs wrong: %+v", c)
			}
		case "fast":
			if c.Trees != 0 || c.MemSlots != 0 || c.WalkProb == 0 {
				t.Errorf("fast cell knobs wrong: %+v", c)
			}
		default:
			if c.Trees != 0 || c.MemSlots != 0 || c.WalkProb != 0 {
				t.Errorf("%s cell leaked knobs: %+v", c.Algo, c)
			}
		}
	}
	// SampleK reaches only sampled cells.
	g = Grid{Algos: []string{"sampled", "pushpull"}, Sizes: []int{128}, SampleK: 16}
	cells = g.Scenarios()
	if cells[0].SampleK != 16 || cells[1].SampleK != 0 {
		t.Errorf("SampleK routing wrong: %+v", cells)
	}
}

func TestGridCanonical(t *testing.T) {
	c := Grid{Seed: 9}.Canonical()
	if len(c.Algos) != 1 || len(c.Models) != 1 || len(c.Sizes) != 1 ||
		len(c.Densities) != 1 || len(c.Failures) != 1 || len(c.Trees) != 1 ||
		len(c.MemSlots) != 1 || len(c.WalkProbs) != 1 || c.Reps != 1 || c.Seed != 9 {
		t.Errorf("canonical form incomplete: %+v", c)
	}
	// Canonicalization preserves the expansion (same cells, same order).
	g := Grid{Algos: []string{"memory"}, Sizes: []int{64, 128}, Trees: []int{1, 2}, Reps: 2, Seed: 9}
	a, b := g.Scenarios(), g.Canonical().Scenarios()
	if len(a) != len(b) {
		t.Fatalf("canonicalization changed cell count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d changed: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A canonical grid still validates.
	if err := g.Canonical().Validate(); err != nil {
		t.Errorf("canonical grid invalid: %v", err)
	}
}

func TestExecuteKnobOverrides(t *testing.T) {
	// sampled honors SampleK and defaults it.
	m := Execute(Scenario{Algo: "sampled", Model: "er", N: 256, SampleK: 8}, 0, CellSeed(2, 0, 0))
	if _, ok := m["msgs_per_node"]; !ok {
		t.Fatalf("sampled metrics missing: %v", m)
	}
	// An explicit walk probability changes the fast-gossip run.
	base := Execute(Scenario{Algo: "fast", Model: "er", N: 256}, 0, CellSeed(3, 0, 0))
	hot := Execute(Scenario{Algo: "fast", Model: "er", N: 256, WalkProb: 1}, 0, CellSeed(3, 0, 0))
	if base["msgs_per_node"] == hot["msgs_per_node"] {
		t.Error("walkprob=1 did not change fast-gossip accounting")
	}
	// Memory knobs reach the robustness experiment: trees=1 under
	// failures (vs the default 3) changes the loss accounting.
	one := Execute(Scenario{Algo: "memory", Model: "er", N: 256, Failures: 25, Trees: 1}, 0, CellSeed(4, 0, 0))
	three := Execute(Scenario{Algo: "memory", Model: "er", N: 256, Failures: 25}, 0, CellSeed(4, 0, 0))
	if _, ok := one["ratio"]; !ok {
		t.Fatalf("robustness metrics missing: %v", one)
	}
	if one["lost_additional"] < three["lost_additional"] {
		t.Errorf("1 tree lost fewer messages (%g) than 3 trees (%g)", one["lost_additional"], three["lost_additional"])
	}
}

func TestRecordTableKnobColumns(t *testing.T) {
	results := (&Runner{Workers: 1}).RunGrid(Grid{
		Algos: []string{"memory"}, Sizes: []int{64}, MemSlots: []int{2, 4}, Seed: 8,
	})
	var b strings.Builder
	Table("knobs", results).Render(&b)
	if !strings.Contains(b.String(), "memslots") {
		t.Errorf("knob column missing:\n%s", b.String())
	}
	// Grids without knobs render the five classic dimension columns.
	var plain strings.Builder
	Table("plain", (&Runner{Workers: 1}).RunGrid(Grid{Sizes: []int{64}, Seed: 8})).Render(&plain)
	if strings.Contains(plain.String(), "memslots") || strings.Contains(plain.String(), "walkprob") {
		t.Errorf("knob columns leaked into plain table:\n%s", plain.String())
	}
}
