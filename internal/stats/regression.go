package stats

import "math"

// Fit is an ordinary least-squares line y = Intercept + Slope·x.
type Fit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination (1 = perfect fit).
	R2 float64
	N  int
}

// LinearFit fits a least-squares line through (xs, ys). It panics on
// mismatched lengths and returns a zero fit for fewer than two points or a
// degenerate x range. The shape tests use it to check, e.g., that
// push–pull rounds grow with slope ≈ 1 in log₂ n while the memory model's
// slope is ≈ 0.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return Fit{N: n}
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{N: n}
	}
	slope := sxy / sxx
	fit := Fit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	if syy > 0 {
		ssRes := syy - slope*sxy
		fit.R2 = 1 - ssRes/syy
		if math.IsNaN(fit.R2) {
			fit.R2 = 0
		}
	} else {
		fit.R2 = 1 // constant y fitted exactly by slope 0
	}
	return fit
}
