package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
	if !almost(f.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestLinearFitConstant(t *testing.T) {
	f := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if f.Slope != 0 || f.Intercept != 5 || f.R2 != 1 {
		t.Errorf("constant fit = %+v", f)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{1}, []float64{2}); f.Slope != 0 || f.N != 1 {
		t.Errorf("single point fit = %+v", f)
	}
	if f := LinearFit([]float64{2, 2}, []float64{1, 3}); f.Slope != 0 {
		t.Errorf("vertical data fit = %+v", f)
	}
	if f := LinearFit(nil, nil); f.N != 0 {
		t.Errorf("empty fit = %+v", f)
	}
}

func TestLinearFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestLinearFitNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 4+0.5*x+r.NormFloat64()*0.2)
	}
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope-0.5) > 0.01 || math.Abs(f.Intercept-4) > 0.3 {
		t.Errorf("noisy fit = %+v", f)
	}
	if f.R2 < 0.95 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestQuickLinearFitRecoversLine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slope := r.Float64()*10 - 5
		icept := r.Float64()*10 - 5
		var xs, ys []float64
		for i := 0; i < 10; i++ {
			x := r.Float64() * 100
			xs = append(xs, x)
			ys = append(ys, icept+slope*x)
		}
		fit := LinearFit(xs, ys)
		return almost(fit.Slope, slope, 1e-6) && almost(fit.Intercept, icept, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
