// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming moments (Welford), order statistics,
// normal-approximation confidence intervals, and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc is a streaming accumulator of count, mean and variance (Welford's
// algorithm), plus min and max. The zero value is ready to use.
type Acc struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add feeds one observation.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddAll feeds a slice of observations.
func (a *Acc) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Acc) N() int64 { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Acc) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 if n < 2).
func (a *Acc) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Acc) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 if empty).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Acc) Max() float64 { return a.max }

// StdErr returns the standard error of the mean.
func (a *Acc) StdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (a *Acc) CI95() float64 { return 1.96 * a.StdErr() }

// Merge folds o into a (parallel-sweep reduction).
func (a *Acc) Merge(o *Acc) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	n := a.n + o.n
	d := o.mean - a.mean
	a.m2 += o.m2 + d*d*float64(a.n)*float64(o.n)/float64(n)
	a.mean += d * float64(o.n) / float64(n)
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
	a.n = n
}

// String renders "mean ± ci95 (n=..)"; used by the harness tables.
func (a *Acc) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", a.Mean(), a.CI95(), a.n)
}

// Mean returns the mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	var a Acc
	a.AddAll(xs)
	return a.StdDev()
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// Quantiles returns several quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary is a one-shot descriptive summary of a sample.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, P25, P50, P75 float64
	P95, Max           float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	var a Acc
	a.AddAll(xs)
	qs := Quantiles(xs, 0.25, 0.5, 0.75, 0.95)
	return Summary{
		N:      len(xs),
		Mean:   a.Mean(),
		StdDev: a.StdDev(),
		Min:    a.Min(),
		P25:    qs[0],
		P50:    qs[1],
		P75:    qs[2],
		P95:    qs[3],
		Max:    a.Max(),
	}
}

// Histogram is a fixed-width histogram over [Lo, Hi); observations outside
// the range are clamped into the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	total   int64
}

// NewHistogram returns a histogram with k buckets over [lo, hi).
func NewHistogram(lo, hi float64, k int) *Histogram {
	if k <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, k)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	k := len(h.Buckets)
	i := int(float64(k) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= k {
		i = k - 1
	}
	h.Buckets[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// FractionAbove returns the fraction of observations in buckets whose lower
// edge is >= x.
func (h *Histogram) FractionAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	k := len(h.Buckets)
	width := (h.Hi - h.Lo) / float64(k)
	var c int64
	for i, b := range h.Buckets {
		if h.Lo+float64(i)*width >= x {
			c += b
		}
	}
	return float64(c) / float64(h.total)
}
