package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.N() != 5 {
		t.Errorf("N = %d", a.N())
	}
	if !almost(a.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %v", a.Mean())
	}
	if !almost(a.Variance(), 2.5, 1e-12) {
		t.Errorf("Variance = %v", a.Variance())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty Acc should report zeros")
	}
}

func TestAccSingle(t *testing.T) {
	var a Acc
	a.Add(7)
	if a.Variance() != 0 {
		t.Errorf("single-observation variance = %v", a.Variance())
	}
	if a.Min() != 7 || a.Max() != 7 {
		t.Error("single-observation min/max wrong")
	}
}

func TestAccMergeMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2 := 1+r.Intn(50), 1+r.Intn(50)
		var whole, a, b Acc
		for i := 0; i < n1; i++ {
			x := r.NormFloat64()*3 + 1
			whole.Add(x)
			a.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := r.NormFloat64()*3 + 1
			whole.Add(x)
			b.Add(x)
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), 1e-9) &&
			almost(a.Variance(), whole.Variance(), 1e-9) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccMergeEmpty(t *testing.T) {
	var a, b Acc
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Error("merge with empty changed N")
	}
	var c Acc
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 1 {
		t.Error("merge into empty wrong")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	// Unbiased std of this classic sample is sqrt(32/7).
	if !almost(StdDev(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 || !almost(s.P50, 50, 1e-9) {
		t.Errorf("Summary = %+v", s)
	}
	if !almost(s.P25, 25, 1e-9) || !almost(s.P95, 95, 1e-9) {
		t.Errorf("Summary quantiles = %+v", s)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, b := range h.Buckets {
		if b != 1 {
			t.Errorf("bucket %d = %d, want 1", i, b)
		}
	}
	h.Add(-5) // clamps into first bucket
	h.Add(99) // clamps into last bucket
	if h.Buckets[0] != 2 || h.Buckets[9] != 2 {
		t.Error("clamping failed")
	}
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramFractionAbove(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.FractionAbove(5); !almost(got, 0.5, 1e-12) {
		t.Errorf("FractionAbove(5) = %v", got)
	}
	if got := h.FractionAbove(0); got != 1 {
		t.Errorf("FractionAbove(0) = %v", got)
	}
	var empty Histogram
	empty.Buckets = make([]int64, 1)
	empty.Hi = 1
	if empty.FractionAbove(0) != 0 {
		t.Error("empty histogram FractionAbove != 0")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var small, big Acc
	for i := 0; i < 10; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		big.Add(r.NormFloat64())
	}
	if big.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: %v vs %v", big.CI95(), small.CI95())
	}
}

func TestAccString(t *testing.T) {
	var a Acc
	a.Add(1)
	a.Add(2)
	if s := a.String(); s == "" {
		t.Error("empty String")
	}
}
