// Package sweep is the experiment harness: it runs repeated simulations
// (optionally in parallel), aggregates them with internal/stats, and
// renders results as aligned text tables and CSV.
package sweep

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"gossip/internal/stats"
)

// Repeat runs fn(rep) for rep = 0..reps-1 and accumulates the returned
// values. Repetitions are independent simulations keyed by rep, so results
// do not depend on scheduling.
func Repeat(reps int, fn func(rep int) float64) stats.Acc {
	var acc stats.Acc
	for r := 0; r < reps; r++ {
		acc.Add(fn(r))
	}
	return acc
}

// RepeatParallel is Repeat with a bounded worker pool. workers <= 0 uses
// GOMAXPROCS. fn must be safe for concurrent use with distinct rep values
// (the simulators are: each run builds its own substrate). The aggregation
// is order-independent, so the result is deterministic.
func RepeatParallel(reps, workers int, fn func(rep int) float64) stats.Acc {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	if workers <= 1 {
		return Repeat(reps, fn)
	}
	vals := make([]float64, reps)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				vals[r] = fn(r)
			}
		}()
	}
	for r := 0; r < reps; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	var acc stats.Acc
	acc.AddAll(vals)
	return acc
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one formatted row; values are Sprinted with %v. When the
// table has a header, extra cells beyond the column count are dropped (a
// row wider than the header would make Render index past its width table
// and panic).
func (t *Table) AddRow(cells ...any) {
	if len(t.Columns) > 0 && len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			// Cells past the header (rows appended directly to Rows)
			// render unpadded instead of indexing past widths.
			if i < len(widths) {
				c = pad(c, widths[i])
			}
			parts[i] = c
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV writes the table as name.csv under dir (creating dir).
func (t *Table) WriteCSV(dir, name string) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sweep: create csv dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return fmt.Errorf("sweep: create csv: %w", err)
	}
	// A failed Close is a failed flush to disk: report it rather than
	// claiming success with a truncated file.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("sweep: close csv: %w", cerr)
		}
	}()
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(f, strings.Join(quoted, ","))
		return err
	}
	if err := write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// LogSpacedSizes returns k graph sizes geometrically spaced in [lo, hi]
// (inclusive endpoints, deduplicated, ascending) — the x grid of the
// paper's figures.
func LogSpacedSizes(lo, hi, k int) []int {
	if k < 2 || hi <= lo {
		return []int{lo}
	}
	out := make([]int, 0, k)
	ratio := float64(hi) / float64(lo)
	for i := 0; i < k; i++ {
		x := float64(lo) * math.Pow(ratio, float64(i)/float64(k-1))
		v := int(x + 0.5)
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
