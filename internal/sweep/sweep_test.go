package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRepeat(t *testing.T) {
	acc := Repeat(5, func(rep int) float64 { return float64(rep) })
	if acc.N() != 5 || acc.Mean() != 2 {
		t.Errorf("Repeat acc: n=%d mean=%v", acc.N(), acc.Mean())
	}
}

func TestRepeatParallelMatchesSequential(t *testing.T) {
	fn := func(rep int) float64 { return float64(rep * rep) }
	seq := Repeat(20, fn)
	par := RepeatParallel(20, 4, fn)
	if seq.N() != par.N() || seq.Mean() != par.Mean() {
		t.Errorf("parallel (%v) != sequential (%v)", par.Mean(), seq.Mean())
	}
	if seq.StdDev() != par.StdDev() {
		t.Error("spread differs")
	}
}

func TestRepeatParallelSingleWorker(t *testing.T) {
	acc := RepeatParallel(3, 1, func(rep int) float64 { return 1 })
	if acc.N() != 3 {
		t.Error("single worker path wrong")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"n", "value"}}
	tb.AddRow(1024, 3.14159)
	tb.AddRow("big", "x")
	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1024") {
		t.Errorf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "--") {
		t.Error("separator missing")
	}
}

func TestTableAddRowWiderThanHeader(t *testing.T) {
	// Regression: a row with more cells than columns used to survive into
	// Render, which indexes widths[i] sized by len(Columns) and panicked.
	tb := Table{Columns: []string{"a", "b"}}
	tb.AddRow(1, 2, 3, 4)
	if got := len(tb.Rows[0]); got != 2 {
		t.Fatalf("row width = %d, want clamped to 2", got)
	}
	var b strings.Builder
	tb.Render(&b) // must not panic
	if !strings.Contains(b.String(), "1  2") {
		t.Errorf("clamped row rendered wrong:\n%s", b.String())
	}
	// Headerless tables keep arbitrary-width rows (Render guards them).
	free := Table{}
	free.AddRow(1, 2, 3)
	if len(free.Rows[0]) != 3 {
		t.Errorf("headerless row clamped: %v", free.Rows[0])
	}
}

func TestTableWriteCSVCloseError(t *testing.T) {
	// Writing into a directory path fails at Create; the close-error path
	// needs a file that opens but cannot flush, which portable tests can't
	// force — so assert the error shape for the create failure and that a
	// successful write still returns nil (covered in TestTableWriteCSV).
	tb := Table{Columns: []string{"a"}}
	tb.AddRow(1)
	if err := tb.WriteCSV("/dev/null", "out"); err == nil {
		t.Error("WriteCSV under /dev/null succeeded")
	}
}

func TestTableWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tb := Table{Columns: []string{"a", "b"}}
	tb.AddRow("x,y", 2.0)
	if err := tb.WriteCSV(dir, "out"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "a,b") || !strings.Contains(got, "\"x,y\",2") {
		t.Errorf("csv content: %q", got)
	}
}

func TestLogSpacedSizes(t *testing.T) {
	s := LogSpacedSizes(1000, 100000, 5)
	if s[0] != 1000 || s[len(s)-1] != 100000 {
		t.Errorf("endpoints wrong: %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Errorf("not strictly increasing: %v", s)
		}
	}
	// Roughly geometric: ratios similar.
	r1 := float64(s[1]) / float64(s[0])
	r2 := float64(s[len(s)-1]) / float64(s[len(s)-2])
	if r1/r2 > 1.5 || r2/r1 > 1.5 {
		t.Errorf("spacing not geometric: %v", s)
	}
}

func TestLogSpacedSizesDegenerate(t *testing.T) {
	if got := LogSpacedSizes(10, 10, 3); len(got) != 1 || got[0] != 10 {
		t.Errorf("degenerate sweep wrong: %v", got)
	}
	if got := LogSpacedSizes(10, 100, 1); len(got) != 1 {
		t.Errorf("single-point sweep wrong: %v", got)
	}
}
