// Package walk implements the random-walk machinery of Algorithm 1
// Phase II: message-carrying tokens with move counters, per-node FIFO
// queues ("to ensure that no random walk is lost, each node collects all
// incoming messages … and stores them in a queue to send them out one by
// one"), and a payload pool so a simulation round allocates no bitsets in
// steady state.
package walk

import "gossip/internal/bitset"

// Token is one random walk: the combined message payload it carries and
// the number of real moves it has made (the moves(m) counter of the
// paper, used to stop walks after c_moves·log n moves so they stay mixed).
type Token struct {
	Payload *bitset.Set
	Moves   int32
}

// Queue is a FIFO of tokens. The zero value is an empty queue. Pop
// returns tokens in arrival order; arrival order is made deterministic by
// the caller (deliveries are processed in increasing sender id).
type Queue struct {
	items []*Token
	head  int
}

// Add enqueues t.
func (q *Queue) Add(t *Token) { q.items = append(q.items, t) }

// Pop dequeues the oldest token; it panics on an empty queue.
func (q *Queue) Pop() *Token {
	if q.Empty() {
		panic("walk: Pop from empty queue")
	}
	t := q.items[q.head]
	q.items[q.head] = nil // release for GC / pool hygiene
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return t
}

// Empty reports whether the queue holds no tokens.
func (q *Queue) Empty() bool { return q.head == len(q.items) }

// Len returns the number of queued tokens.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Drain removes and returns all queued tokens (end-of-round cleanup; the
// paper's rounds discard walks that are still queued after activating
// their hosts).
func (q *Queue) Drain() []*Token {
	out := make([]*Token, 0, q.Len())
	for !q.Empty() {
		out = append(out, q.Pop())
	}
	return out
}

// Pool recycles token payloads of a fixed width.
type Pool struct {
	width int
	free  []*Token
}

// NewPool returns a pool of tokens with width-bit payloads.
func NewPool(width int) *Pool { return &Pool{width: width} }

// Get returns a token with a cleared payload and zero move count.
func (p *Pool) Get() *Token {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		t.Payload.Clear()
		t.Moves = 0
		return t
	}
	return &Token{Payload: bitset.New(p.width)}
}

// Put returns a token to the pool. The caller must not use it afterwards.
func (p *Pool) Put(t *Token) {
	if t == nil {
		return
	}
	p.free = append(p.free, t)
}

// PutAll returns a batch of tokens to the pool.
func (p *Pool) PutAll(ts []*Token) {
	for _, t := range ts {
		p.Put(t)
	}
}
