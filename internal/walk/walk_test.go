package walk

import (
	"testing"
)

func TestQueueFIFO(t *testing.T) {
	var q Queue
	if !q.Empty() || q.Len() != 0 {
		t.Error("zero Queue should be empty")
	}
	a := &Token{Moves: 1}
	b := &Token{Moves: 2}
	q.Add(a)
	q.Add(b)
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	if got := q.Pop(); got != a {
		t.Error("Pop order wrong")
	}
	if got := q.Pop(); got != b {
		t.Error("Pop order wrong")
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty queue should panic")
		}
	}()
	var q Queue
	q.Pop()
}

func TestQueueReuseAfterDrainToEmpty(t *testing.T) {
	var q Queue
	for i := 0; i < 3; i++ {
		q.Add(&Token{Moves: int32(i)})
	}
	for i := 0; i < 3; i++ {
		if q.Pop().Moves != int32(i) {
			t.Fatal("order wrong")
		}
	}
	// Internal storage reset; interleave adds and pops.
	q.Add(&Token{Moves: 10})
	q.Add(&Token{Moves: 11})
	if q.Pop().Moves != 10 {
		t.Error("reuse order wrong")
	}
	q.Add(&Token{Moves: 12})
	if q.Pop().Moves != 11 || q.Pop().Moves != 12 {
		t.Error("interleaved order wrong")
	}
}

func TestDrain(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Add(&Token{Moves: int32(i)})
	}
	q.Pop()
	got := q.Drain()
	if len(got) != 4 {
		t.Fatalf("Drain len = %d", len(got))
	}
	for i, tok := range got {
		if tok.Moves != int32(i+1) {
			t.Errorf("Drain[%d].Moves = %d", i, tok.Moves)
		}
	}
	if !q.Empty() {
		t.Error("queue not empty after Drain")
	}
}

func TestPoolRecycles(t *testing.T) {
	p := NewPool(64)
	a := p.Get()
	if a.Payload.Len() != 64 {
		t.Fatalf("payload width = %d", a.Payload.Len())
	}
	a.Payload.Add(3)
	a.Moves = 9
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Error("pool did not recycle")
	}
	if b.Moves != 0 || b.Payload.Any() {
		t.Error("recycled token not reset")
	}
}

func TestPoolPutAllAndNil(t *testing.T) {
	p := NewPool(8)
	a, b := p.Get(), p.Get()
	p.PutAll([]*Token{a, nil, b})
	if len(p.free) != 2 {
		t.Errorf("pool holds %d tokens", len(p.free))
	}
}
