// Package xrand provides the deterministic pseudo-random substrate used by
// every simulation in this module.
//
// The generator is xoshiro256++ seeded through splitmix64. Compared to
// math/rand it offers (a) cheap value-type state that can be embedded
// per-node so that parallel simulations are reproducible independent of
// goroutine scheduling, (b) explicit stream derivation (Split, SeedFor) so a
// single master seed fans out into statistically independent streams for
// (run, node) pairs, and (c) the exact samplers the gossiping algorithms
// need (bounded integers, Bernoulli coins, geometric skips for G(n,p)
// generation).
package xrand

import "math"

// RNG is a xoshiro256++ generator. The zero value is not a valid generator;
// use New or Split. RNG is a value type: copying it forks the stream
// deterministically (both copies then produce the same sequence), which is
// occasionally useful in tests but usually you want Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is used
// for seeding and for hashing seed material.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield streams
// that are independent for all practical purposes (the seed is expanded
// through splitmix64 as recommended by the xoshiro authors).
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes r in place from seed.
func (r *RNG) Reseed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro must not be seeded with the all-zero state; splitmix64 of any
	// seed makes that astronomically unlikely, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// SeedFor derives a stream seed from a master seed and a list of stream
// coordinates (e.g. run index, node index, phase tag). It is a splitmix64
// hash chain, so distinct coordinate tuples give independent seeds.
func SeedFor(master uint64, coords ...uint64) uint64 {
	x := master
	h := splitmix64(&x)
	for _, c := range coords {
		x = h ^ c
		h = splitmix64(&x)
	}
	return h
}

// Split returns a new generator whose stream is independent of r's
// continuation. It consumes one output from r.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// The implementation is Lemire's nearly-divisionless bounded sampler, which
// is unbiased.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n with non-positive n")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire: multiply-shift with rejection in the low word.
	x := r.Uint64()
	hi, lo := mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, n)
		}
	}
	return hi
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials, i.e. a sample from the geometric
// distribution on {0, 1, 2, ...}. It is the skip length used by the G(n,p)
// edge sampler. p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("xrand: Geometric with non-positive p")
	}
	// Inverse-CDF: floor(log(U) / log(1-p)) with U in (0,1].
	u := 1.0 - r.Float64() // in (0, 1]
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// Perm returns a uniformly random permutation of [0, n) as int32 values
// (int32 because simulations index nodes with int32).
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = int32(i)
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK returns k distinct values drawn uniformly from [0, n) using
// Floyd's algorithm. The result order is not uniform (callers who need a
// uniform ordered sample should Shuffle it). It panics if k > n or k < 0.
func (r *RNG) SampleK(n, k int) []int32 {
	if k < 0 || k > n {
		panic("xrand: SampleK with k out of range")
	}
	chosen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	for j := n - k; j < n; j++ {
		t := int32(r.Intn(j + 1))
		if _, ok := chosen[t]; ok {
			t = int32(j)
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Binomial returns a sample from Binomial(n, p). For the small n·p regime it
// uses geometric skipping; otherwise it falls back to a normal approximation
// with continuity correction, which is accurate far beyond the needs of the
// sanity checks that use it (the simulators themselves never approximate).
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 64 {
		// Count successes by jumping between them geometrically.
		count := 0
		i := r.Geometric(p)
		for i < n {
			count++
			i += 1 + r.Geometric(p)
		}
		return count
	}
	sd := math.Sqrt(mean * (1 - p))
	x := math.Round(mean + sd*r.Normal())
	if x < 0 {
		x = 0
	}
	if x > float64(n) {
		x = float64(n)
	}
	return int(x)
}

// Normal returns a standard normal sample (Box–Muller, one value per call).
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
