package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams from distinct seeds collide %d/100 times", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Reseed(7)
	if got := r.Uint64(); got != first {
		t.Errorf("Reseed did not restart stream: %d != %d", got, first)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish check on 8 buckets.
	r := New(99)
	const buckets = 8
	const samples = 80000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(samples) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %f", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(8)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(10)
	p := 0.2
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of geometric counting failures
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(11)
	if g := r.Geometric(1); g != 0 {
		t.Errorf("Geometric(1) = %d, want 0", g)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(100)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := New(13)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		k := r.Intn(n + 1)
		s := r.SampleK(n, k)
		if len(s) != k {
			t.Fatalf("SampleK(%d,%d) len = %d", n, k, len(s))
		}
		seen := map[int32]bool{}
		for _, v := range s {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("SampleK(%d,%d) invalid: %v", n, k, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleKCoverage(t *testing.T) {
	// Every element should be sampled eventually.
	r := New(14)
	n := 10
	hit := make([]int, n)
	for trial := 0; trial < 2000; trial++ {
		for _, v := range r.SampleK(n, 3) {
			hit[v]++
		}
	}
	for i, h := range hit {
		if h == 0 {
			t.Errorf("element %d never sampled", i)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(15)
	cases := []struct {
		n int
		p float64
	}{{100, 0.05}, {1000, 0.3}, {50, 0.9}}
	for _, c := range cases {
		sum := 0.0
		const reps = 20000
		for i := 0; i < reps; i++ {
			sum += float64(r.Binomial(c.n, c.p))
		}
		mean := sum / reps
		want := float64(c.n) * c.p
		sd := math.Sqrt(want * (1 - c.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(reps)+0.5 {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(16)
	if r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial(0, p) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Error("Binomial(n, 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("Binomial(n, 1) != n")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	sum, sumsq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestSeedForDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for run := uint64(0); run < 30; run++ {
		for node := uint64(0); node < 30; node++ {
			s := SeedFor(123, run, node)
			if seen[s] {
				t.Fatalf("SeedFor collision at run=%d node=%d", run, node)
			}
			seen[s] = true
		}
	}
	// Order of coordinates matters.
	if SeedFor(1, 2, 3) == SeedFor(1, 3, 2) {
		t.Error("SeedFor should distinguish coordinate order")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(20)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("Split streams collide %d/100 times", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(21)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
	}
	// Power-of-two bound.
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(1 << 40); v >= 1<<40 {
			t.Fatalf("Uint64n(2^40) = %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
