package gossip

// Shape tests: regression fits over size sweeps that pin the paper's
// qualitative claims — the strongest form of "reproduces the figure"
// that a unit test can assert without golden numbers.

import (
	"testing"

	"gossip/internal/stats"
)

// sweepMsgsPerNode runs algo over a doubling size grid and returns the
// least-squares fit of messages/node against log₂n.
func sweepMsgsPerNode(t *testing.T, sizes []int, run func(n int, seed uint64) *Result) stats.Fit {
	t.Helper()
	var xs, ys []float64
	for _, n := range sizes {
		const reps = 2
		acc := 0.0
		for r := uint64(0); r < reps; r++ {
			res := run(n, uint64(n)+r)
			if !res.Completed {
				t.Fatalf("n=%d run incomplete", n)
			}
			acc += res.TransmissionsPerNode() / reps
		}
		xs = append(xs, Log2n(n))
		ys = append(ys, acc)
	}
	return stats.LinearFit(xs, ys)
}

var shapeSizes = []int{1024, 2048, 4096, 8192}

func TestShapePushPullGrowsLikeLogN(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: multi-size shape sweep")
	}
	// Figure 1: the baseline's messages/node equal its round count, which
	// grows ~log n. Slope in log₂n close to 1.
	fit := sweepMsgsPerNode(t, shapeSizes, func(n int, seed uint64) *Result {
		return RunPushPull(NewPaperGraph(n, seed), seed, 0)
	})
	if fit.Slope < 0.4 || fit.Slope > 1.8 {
		t.Errorf("push-pull slope vs log n = %v, want ≈1", fit.Slope)
	}
}

func TestShapeMemoryFlat(t *testing.T) {
	// Figure 1: the memory model's messages/node are bounded by a small
	// constant independent of n — slope ≈ 0.
	fit := sweepMsgsPerNode(t, shapeSizes, func(n int, seed uint64) *Result {
		return RunMemoryGossip(NewPaperGraph(n, seed), TunedMemoryParams(n), seed, -1)
	})
	if fit.Slope > 0.25 || fit.Slope < -0.25 {
		t.Errorf("memory slope vs log n = %v, want ≈0", fit.Slope)
	}
}

func TestShapeFastGossipBetweenBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: multi-size shape sweep")
	}
	// Figure 1: FastGossiping grows slower than the baseline (the gap
	// widens with n).
	pp := sweepMsgsPerNode(t, shapeSizes, func(n int, seed uint64) *Result {
		return RunPushPull(NewPaperGraph(n, seed), seed, 0)
	})
	fg := sweepMsgsPerNode(t, shapeSizes, func(n int, seed uint64) *Result {
		return RunFastGossip(NewPaperGraph(n, seed), TunedFastGossipParams(n), seed)
	})
	if fg.Slope >= pp.Slope {
		t.Errorf("fast-gossiping slope %v not below push-pull slope %v", fg.Slope, pp.Slope)
	}
}

func TestShapeGossipDensityInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: multi-size shape sweep")
	}
	// The title claim: at fixed n, messages/node of gossiping barely move
	// across an 8x density range (d = log^1.5 n … log^3 n).
	n := 4096
	var ys []float64
	for _, e := range []float64{1.5, 2.0, 2.5, 3.0} {
		g := NewErdosRenyi(n, EdgeProbabilityLogPow(n, e), uint64(100*e))
		res := RunPushPull(g, uint64(e*7), 0)
		if !res.Completed {
			t.Fatalf("density %v run incomplete", e)
		}
		ys = append(ys, res.TransmissionsPerNode())
	}
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if hi > 1.35*lo {
		t.Errorf("push-pull gossiping density-sensitive: %v", ys)
	}
}

func TestShapeBroadcastPushTransmissionsTrackNLogN(t *testing.T) {
	// Context ([23], [39]): push-only broadcast sends Θ(log n) copies per
	// node; slope vs log₂n is a positive constant.
	var xs, ys []float64
	for _, n := range shapeSizes {
		res := RunBroadcast(NewPaperGraph(n, uint64(n)+5), 0, PushOnly, uint64(n), 0)
		if !res.Completed {
			t.Fatalf("n=%d broadcast incomplete", n)
		}
		xs = append(xs, Log2n(n))
		ys = append(ys, float64(res.Transmissions)/float64(n))
	}
	fit := stats.LinearFit(xs, ys)
	if fit.Slope < 0.3 {
		t.Errorf("push broadcast slope vs log n = %v, want clearly positive", fit.Slope)
	}
}

func TestShapeMedianCounterTracksLogLogN(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: multi-size shape sweep")
	}
	// Karp et al.: transmissions/node = Θ(loglog n) — across a 64x size
	// range the per-node cost divided by loglog n stays within a narrow
	// constant band.
	var ratios []float64
	for _, n := range []int{512, 4096, 32768} {
		res := RunMedianCounterBroadcast(NewPaperGraph(n, uint64(n)+9), 0,
			DefaultMedianCounterParams(n), uint64(n))
		if !res.Completed || !res.Quiesced {
			t.Fatalf("n=%d median counter failed", n)
		}
		ratios = append(ratios, float64(res.Transmissions)/float64(res.N)/float64(Log2n(n)))
	}
	// Dividing by log n instead of loglog n must show clear decay…
	if !(ratios[2] < ratios[0]) {
		t.Errorf("median counter scaling looks like n·log n: %v", ratios)
	}
}
